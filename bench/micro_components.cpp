// Component micro-benchmarks (google-benchmark): the library's hot
// primitives — RLC codec, SFU LUT exp, CSR traversal, degree reorder,
// sparse×dense weighting, cache-policy aggregation step, and the reference
// GNN layers. These are engineering benchmarks for the simulator itself
// (host-side speed), complementing the fig*/table* reproduction harnesses.
#include <benchmark/benchmark.h>

#include "arch/sfu.hpp"
#include "common/rng.hpp"
#include "core/aggregation.hpp"
#include "core/weighting.hpp"
#include "datasets/synthetic.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/reference.hpp"
#include "sparse/rlc.hpp"

namespace {

using namespace gnnie;

const Dataset& cora() {
  static const Dataset d = generate_dataset(DatasetId::kCora, 1.0, 1);
  return d;
}

void BM_RlcEncode(benchmark::State& state) {
  const auto sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(7);
  std::vector<float> v(4096);
  for (float& x : v) x = rng.next_bool(sparsity) ? 0.0f : 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlc_encode(v));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096 * 4);
}
BENCHMARK(BM_RlcEncode)->Arg(50)->Arg(90)->Arg(99);

void BM_RlcRoundtrip(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> v(4096);
  for (float& x : v) x = rng.next_bool(0.9873) ? 0.0f : 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlc_decode(rlc_encode(v)));
  }
}
BENCHMARK(BM_RlcRoundtrip);

void BM_SfuExp(benchmark::State& state) {
  SfuExpLut sfu;
  float x = -10.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfu.exp(x));
    x += 0.001f;
    if (x > 10.0f) x = -10.0f;
  }
}
BENCHMARK(BM_SfuExp);

void BM_CsrTraversal(benchmark::State& state) {
  const Csr& g = cora().graph;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      for (VertexId n : g.neighbors(v)) sum += n;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.edge_count()));
}
BENCHMARK(BM_CsrTraversal);

void BM_DegreeReorder(benchmark::State& state) {
  const Csr& g = cora().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(degree_descending_order(g));
  }
}
BENCHMARK(BM_DegreeReorder);

void BM_WeightingEngine(benchmark::State& state) {
  const Dataset& d = cora();
  EngineConfig cfg = EngineConfig::paper_default(false);
  ModelConfig m;
  m.kind = GnnKind::kGcn;
  m.input_dim = d.spec.feature_length;
  m.hidden_dim = static_cast<std::uint32_t>(state.range(0));
  GnnWeights w = init_weights(m, 3);
  for (auto _ : state) {
    HbmModel hbm(cfg.hbm);
    WeightingEngine eng(cfg, &hbm);
    benchmark::DoNotOptimize(eng.run(d.features, w.layers[0].w));
  }
}
BENCHMARK(BM_WeightingEngine)->Arg(32)->Arg(128);

void BM_AggregationPolicy(benchmark::State& state) {
  const Dataset& d = cora();
  Matrix hw(d.graph.vertex_count(), 128, 0.5f);
  EngineConfig cfg = EngineConfig::paper_default(false);
  for (auto _ : state) {
    HbmModel hbm(cfg.hbm);
    AggregationEngine eng(cfg, &hbm);
    AggregationTask task;
    task.graph = &d.graph;
    task.hw = &hw;
    task.kind = AggKind::kGcnNormalizedSum;
    benchmark::DoNotOptimize(eng.run(task));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d.graph.edge_count()));
}
BENCHMARK(BM_AggregationPolicy);

void BM_ReferenceGcnLayer(benchmark::State& state) {
  const Dataset& d = cora();
  ModelConfig m;
  m.kind = GnnKind::kGcn;
  m.input_dim = d.spec.feature_length;
  m.hidden_dim = 32;
  GnnWeights w = init_weights(m, 3);
  Matrix x = to_matrix(d.features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcn_layer(d.graph, x, w.layers[0]));
  }
}
BENCHMARK(BM_ReferenceGcnLayer);

void BM_GraphGeneration(benchmark::State& state) {
  DatasetSpec spec = spec_of(DatasetId::kCora).scaled(0.5);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_graph(spec, seed++));
  }
}
BENCHMARK(BM_GraphGeneration);

void BM_NeighborSampling(benchmark::State& state) {
  const Csr& g = cora().graph;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_neighborhood(g, 25, seed++));
  }
}
BENCHMARK(BM_NeighborSampling);

}  // namespace
