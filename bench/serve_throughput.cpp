// Wall-clock throughput of the serving simulator core.
//
// Everything else in bench/ measures the *modeled* system in virtual
// cycles; this binary measures the simulator itself — how many simulation
// events per wall-clock second the event loop retires on a million-request
// open-loop trace. An event is one arrival or one service-slot completion
// (coalesced slots complete once for the whole group), so the count is a
// property of the modeled run, fully deterministic, and identical across
// repetitions; only the wall time varies.
//
// Two scenarios bracket the hot paths:
//   * poisson-shortest-queue — one graph, 4 dies, rho 0.9: the plain
//     event loop (heap pops, queue moves, estimate refresh) with nothing
//     warmth- or batching-shaped to hide behind.
//   * warm-coalescing-mix — two graphs 4:1, warmth on with a one-plan
//     budget, max_coalesce 8, rho 1.1: deep queues, per-fingerprint drain
//     scans, warmth touches and swap charging all on the clock.
//
// Each scenario runs --reps times over the same prebuilt trace and reports
// the best (minimum) wall time — best-of-N is the standard way to shave
// scheduler noise off a CPU-bound measurement. A per-run FNV-1a checksum
// over every record must agree across repetitions (the simulator is
// deterministic; disagreement is a bug and exits non-zero).
//
// Emits one JSON object (stdout by default, --json=PATH for a file) that
// scripts/check_bench.py gates against bench/baseline_throughput.json in
// the Release CI leg. The checked-in baseline is a conservative floor, not
// a measured median — see that file and README "Simulator performance".
//
//   $ ./bench_serve_throughput --requests=1000000 --scale=0.03
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/cluster.hpp"

namespace {

struct Options {
  std::size_t requests = 1'000'000;
  double scale = 0.05;
  std::uint64_t seed = 1;
  std::size_t reps = 3;
  std::string json_path;  // empty = stdout
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--requests=", 0) == 0) {
      opt.requests = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--reps=", 0) == 0) {
      opt.reps = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (opt.requests == 0 || opt.scale <= 0.0 || opt.reps == 0) {
    std::fprintf(stderr, "--requests, --scale and --reps must be positive\n");
    std::exit(2);
  }
  return opt;
}

/// FNV-1a over the fields that pin a record's identity; the simulator is
/// deterministic, so every repetition must produce the same fold.
std::uint64_t fold_records(const gnnie::ServingReport& rep) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const gnnie::RequestRecord& r : rep.requests) {
    mix(r.die);
    mix(r.start);
    mix(r.finish);
    mix(r.group_size);
  }
  return h;
}

struct ScenarioResult {
  std::string name;
  std::uint64_t events = 0;  ///< arrivals + service-slot completions
  double best_seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

/// Runs `trace` on `cluster` opt.reps times, keeps the best wall time, and
/// insists the record checksum never moves between repetitions.
ScenarioResult run_scenario(const std::string& name, const gnnie::serve::Cluster& cluster,
                            const gnnie::serve::RequestTrace& trace,
                            const gnnie::serve::Scheduler& scheduler, const Options& opt) {
  using clock = std::chrono::steady_clock;
  ScenarioResult result;
  result.name = name;
  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    const auto t0 = clock::now();
    const gnnie::ServingReport report = cluster.simulate(trace, {.custom_scheduler = &scheduler});
    const double seconds = std::chrono::duration<double>(clock::now() - t0).count();
    const std::uint64_t checksum = fold_records(report);
    if (rep == 0) {
      result.checksum = checksum;
      result.events = static_cast<std::uint64_t>(report.requests.size()) +
                      report.total_groups();
      result.best_seconds = seconds;
    } else {
      if (checksum != result.checksum) {
        std::fprintf(stderr, "%s: repetition %zu produced a different record checksum\n",
                     name.c_str(), rep);
        std::exit(1);
      }
      result.best_seconds = std::min(result.best_seconds, seconds);
    }
  }
  result.events_per_sec = static_cast<double>(result.events) / result.best_seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gnnie;
  const Options opt = parse(argc, argv);

  bench::print_banner("Serving: simulator wall-clock throughput",
                      "the event loop retires a million-request trace in seconds, not minutes");

  bench::Workload w =
      bench::make_workload(spec_of(DatasetId::kCora), opt.scale, GnnKind::kGcn, opt.seed);
  bench::Workload w2 = bench::make_workload(spec_of(DatasetId::kCiteseer), opt.scale,
                                            GnnKind::kGcn, opt.seed + 1);
  DatasetSpec w2_spec = w2.data.spec;
  w2_spec.feature_length = w.data.spec.feature_length;  // one model, both graphs
  SparseMatrix features_b = generate_features(w2_spec, opt.seed + 2);

  const std::size_t dies = 4;
  auto scheduler = serve::Scheduler::make(serve::SchedulerKind::kShortestQueue);
  std::vector<ScenarioResult> results;

  // Scenario 1: plain event loop, one graph at rho 0.9.
  {
    Engine engine(EngineConfig::paper_default(false));
    CompiledModel compiled = engine.compile(w.model, w.weights);
    GraphPlanPtr plan = compiled.plan(w.data.graph);
    const Cycles service = compiled.cost({plan, &w.data.features}).total_cycles;
    const double mean_gap = static_cast<double>(service) / (0.9 * static_cast<double>(dies));
    serve::RequestTrace trace = serve::RequestTrace::poisson(
        {{plan, &w.data.features}}, opt.requests, mean_gap, opt.seed);
    serve::Cluster cluster(compiled, dies);
    results.push_back(
        run_scenario("poisson-shortest-queue", cluster, trace, *scheduler, opt));
  }

  // Scenario 2: warmth + coalescing under overload (rho 1.1) on a 4:1 mix.
  {
    EngineConfig config = EngineConfig::paper_default(false);
    config.batching.max_coalesce = 8;
    Engine engine(config);
    CompiledModel compiled = engine.compile(w.model, w.weights);
    GraphPlanPtr plan_a = compiled.plan(w.data.graph);
    GraphPlanPtr plan_b = compiled.plan(w2.data.graph);
    // Re-compile with warmth on and a one-plan budget (working sets are
    // warmth-independent, so the cold plans size the budget).
    config.warmth.enabled = true;
    config.warmth.die_budget_bytes =
        std::max(plan_a->warm_working_set_bytes(), plan_b->warm_working_set_bytes());
    Engine warm_engine(config);
    CompiledModel warm_compiled = warm_engine.compile(w.model, w.weights);
    GraphPlanPtr warm_a = warm_compiled.plan(w.data.graph);
    GraphPlanPtr warm_b = warm_compiled.plan(w2.data.graph);
    const Cycles cost_a = warm_compiled.cost({warm_a, &w.data.features}).total_cycles;
    const Cycles cost_b = warm_compiled.cost({warm_b, &features_b}).total_cycles;
    const double mean_service = (4.0 * cost_a + cost_b) / 5.0;
    const double mean_gap = mean_service / (1.1 * static_cast<double>(dies));
    serve::RequestTrace trace = serve::RequestTrace::poisson(
        {{warm_a, &w.data.features, 4.0}, {warm_b, &features_b, 1.0}}, opt.requests,
        mean_gap, opt.seed);
    serve::Cluster cluster(warm_compiled, dies);
    results.push_back(run_scenario("warm-coalescing-mix", cluster, trace, *scheduler, opt));
  }

  std::ostringstream json;
  json << "{\"requests\":" << opt.requests << ",\"scale\":" << opt.scale
       << ",\"seed\":" << opt.seed << ",\"reps\":" << opt.reps << ",\"scenarios\":[";
  std::printf("%-26s %14s %12s %16s %18s\n", "scenario", "events", "best (s)",
              "events/sec", "checksum");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf("%-26s %14llu %12.3f %16.0f %018llx\n", r.name.c_str(),
                (unsigned long long)r.events, r.best_seconds, r.events_per_sec,
                (unsigned long long)r.checksum);
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  (unsigned long long)r.checksum);
    json << (i == 0 ? "" : ",") << "{\"name\":\"" << r.name << "\",\"events\":" << r.events
         << ",\"best_seconds\":" << r.best_seconds
         << ",\"events_per_sec\":" << r.events_per_sec << ",\"checksum\":\"" << checksum_hex
         << "\"}";
  }
  json << "]}";

  const std::string out = json.str();
  if (!bench::json_braces_balanced(out) || out.front() != '{' || out.back() != '}') {
    std::fprintf(stderr, "emitted JSON is malformed\n");
    return 1;
  }
  if (opt.json_path.empty()) {
    std::printf("%s\n", out.c_str());
  } else {
    std::ofstream f(opt.json_path);
    f << out << "\n";
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  std::printf(
      "\nEvents/sec is wall-clock, so compare like builds only: the CI gate\n"
      "runs Release without sanitizers against a deliberately conservative\n"
      "baseline floor (bench/baseline_throughput.json).\n");
  return 0;
}
