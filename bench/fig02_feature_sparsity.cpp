// Fig. 2 — nonzero histogram of input vertex feature vectors (Cora).
// The paper's point: per-vertex nnz is bimodal (sparse Region A vs denser
// Region B), the root cause of weighting-time load imbalance.
#include <cstdio>

#include "bench_util.hpp"
#include "common/histogram.hpp"

int main(int argc, char** argv) {
  using namespace gnnie;
  const auto opt = bench::parse_options(argc, argv);

  bench::print_banner("Fig. 2: Nonzero histogram for input vertex feature vectors (Cora)",
                      "bimodal: sparse Region A (majority) + denser Region B; "
                      "98.73% average sparsity");

  const DatasetSpec& cr = spec_of(DatasetId::kCora);
  SparseMatrix f = generate_features(cr, opt.seed);

  double max_nnz = 0.0;
  for (std::size_t v = 0; v < f.row_count(); ++v) {
    max_nnz = std::max(max_nnz, static_cast<double>(f.row(v).nnz()));
  }
  Histogram h(0.0, max_nnz + 1.0, 30);
  for (std::size_t v = 0; v < f.row_count(); ++v) {
    h.add(static_cast<double>(f.row(v).nnz()));
  }
  std::printf("%s", h.render(60).c_str());
  std::printf("\nvertices=%zu  mean nnz=%.1f  sparsity=%.4f (paper: %.4f)\n", f.row_count(),
              h.mean(), f.sparsity(), cr.feature_sparsity);
  return 0;
}
