// Table II — dataset statistics. Regenerates the paper's table from the
// synthetic stat-matched datasets and reports the graph properties the
// introduction quotes (adjacency sparsity > 99.8% for the citation graphs,
// Reddit's "11% of vertices cover 88% of edges").
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace gnnie;
  const auto opt = bench::parse_options(argc, argv);

  bench::print_banner(
      "Table II: Dataset Information",
      "CR 2708/10556/1433/98.73%  CS 3327/9104/3703/99.15%  PB 19717/88648/500/90%  "
      "PPI 56944/1.63M/50/98.1%  RD 232965/114.6M/602/48.4%");

  Table t({"Dataset", "Vertices", "Edges", "FeatLen", "FeatSparsity(paper)",
           "FeatSparsity(gen)", "AdjSparsity", "Top11%EdgeCover", "MaxDeg/MeanDeg"});
  for (const DatasetSpec& spec : table2_specs()) {
    if (!opt.datasets.empty() &&
        std::find(opt.datasets.begin(), opt.datasets.end(), spec.short_name) ==
            opt.datasets.end()) {
      continue;
    }
    const double scale = opt.scale_for(spec);
    Dataset d = generate_dataset(spec.scaled(scale), opt.seed);
    DegreeStats s = compute_degree_stats(d.graph);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f",
                  s.mean_degree > 0 ? s.max_degree / s.mean_degree : 0.0);
    t.add_row({bench::scale_note(spec, scale), Table::cell(std::uint64_t{d.graph.vertex_count()}),
               Table::cell(d.graph.edge_count()),
               Table::cell(std::uint64_t{d.spec.feature_length}),
               Table::cell(spec.feature_sparsity), Table::cell(d.features.sparsity()),
               Table::cell(d.graph.adjacency_sparsity()), Table::cell(s.edge_coverage_top11),
               ratio});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nNote: PPI/RD run at --scale=%g (mean degree preserved); CR/CS/PB full size.\n",
              opt.large_scale);
  return 0;
}
