// Fig. 17 — speedup-gain vs hardware-overhead ratio β (Eq. 9) for Designs
// B–E against the Design-A baseline (1024 MACs), during Weighting on Cora,
// Citeseer, Pubmed. The paper: β falls as MACs are added uniformly
// (B → C → D), while the flexible-MAC Design E achieves the highest β —
// extra MACs placed where the workload needs them.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/weighting.hpp"

namespace {

gnnie::Cycles weighting_cycles(const gnnie::Dataset& d, const gnnie::ArrayConfig& arr,
                               bool binning) {
  using namespace gnnie;
  EngineConfig cfg = EngineConfig::paper_default(d.spec.vertices > 10000);
  cfg.array = arr;
  cfg.opts.workload_binning = binning;
  cfg.opts.load_redistribution = false;
  HbmModel hbm(cfg.hbm);
  WeightingEngine eng(cfg, &hbm);
  ModelConfig m;
  m.kind = GnnKind::kGcn;
  m.input_dim = d.spec.feature_length;
  GnnWeights w = init_weights(m, 21);
  WeightingReport rep;
  eng.run(d.features, w.layers[0].w, &rep);
  return rep.compute_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gnnie;
  const auto opt = bench::parse_options(argc, argv);

  bench::print_banner(
      "Fig. 17: Speedup gain vs hardware overhead (beta, Eq. 9) for Designs B-E",
      "beta drops for uniform designs B->C->D; flexible-MAC Design E has the highest beta");

  struct DesignPoint {
    const char* name;
    ArrayConfig arr;
    bool binning;
  };
  const DesignPoint designs[] = {
      {"B (5 MAC/CPE, 1280)", ArrayConfig::design_b(), false},
      {"C (6 MAC/CPE, 1536)", ArrayConfig::design_c(), false},
      {"D (7 MAC/CPE, 1792)", ArrayConfig::design_d(), false},
      {"E (FM 4/5/6, 1216)", ArrayConfig::design_e(), true},
  };

  Table t({"dataset", "design", "cycles", "baseline cycles", "added MACs", "beta"});
  for (const char* name : {"CR", "CS", "PB"}) {
    Dataset d = generate_dataset(spec_by_short_name(name), opt.seed);
    const Cycles base_cycles = weighting_cycles(d, ArrayConfig::design_a(), false);
    const double base_macs = ArrayConfig::design_a().total_macs();
    for (const DesignPoint& dp : designs) {
      const Cycles cycles = weighting_cycles(d, dp.arr, dp.binning);
      const double added = dp.arr.total_macs() - base_macs;
      const double beta =
          (static_cast<double>(base_cycles) - static_cast<double>(cycles)) / added;
      t.add_row({name, dp.name, Table::cell(cycles), Table::cell(base_cycles),
                 Table::cell(added), Table::cell(beta)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nbeta = (baseline cycles - design cycles) / added MACs   (Eq. 9)\n");
  return 0;
}
