// Table IV — throughput (TOPS): the array's peak and the effective TOPS
// achieved on Cora, Citeseer, Pubmed (GCN, Table III config). Paper: peak
// 3.17, CR 2.88, CS 2.69, PB 2.57 — throughput degrades only moderately
// with graph size.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace gnnie;
  const auto opt = bench::parse_options(argc, argv);

  bench::print_banner("Table IV: Throughput (TOPS)",
                      "peak 3.17; CR 2.88, CS 2.69, PB 2.57 — moderate degradation with size");

  GnnieEngine peak_probe{EngineConfig::paper_default(true)};
  Table t({"point", "TOPS (measured)", "TOPS (paper)", "fraction of peak"});
  t.add_row({"Peak", Table::cell(peak_probe.peak_tops()), "3.17", "1.00"});

  const double paper[] = {2.88, 2.69, 2.57};
  int i = 0;
  for (const char* name : {"CR", "CS", "PB"}) {
    const DatasetSpec& spec = spec_by_short_name(name);
    bench::Workload w = bench::make_workload(spec, 1.0, GnnKind::kGcn, opt.seed);
    EngineConfig cfg = EngineConfig::paper_default(spec.vertices > 10000);
    const InferenceReport rep = bench::run_gnnie(w, cfg);
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.2f", rep.effective_tops() / peak_probe.peak_tops());
    t.add_row({name, Table::cell(rep.effective_tops()), Table::cell(paper[i]), frac});
    ++i;
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nEffective TOPS counts useful ops (zero-skipped MACs excluded), so sparse\n"
      "inputs and memory-bound aggregation phases lower it below peak.\n");
  return 0;
}
